//! Validation of the non-homogeneous path analysis (Section IV's
//! extension) against the simulator with per-node capacities.

use linksched::core::{HeteroNode, HeteroPath, PathScheduler};
use linksched::sim::{SchedulerKind, SimConfig, TandemSim};
use linksched::traffic::Mmoo;

#[test]
fn hetero_bound_dominates_simulation_with_bottleneck() {
    let source = Mmoo::paper_source();
    let (n_through, n_cross) = (40usize, 60usize);
    let capacities = [24.0, 18.0, 24.0];
    let eps = 1e-2;

    // Analysis: per-node capacity, same cross aggregate at each node.
    // The s-optimization of MmooTandem is homogeneous-only, so sweep s
    // here explicitly.
    let mut best: Option<f64> = None;
    for i in 1..=40 {
        let s = 0.002 * (1.35f64).powi(i);
        if s * source.peak() > 650.0 {
            break;
        }
        let through = source.ebb(s, n_through);
        let cross = source.ebb(s, n_cross);
        let nodes = capacities
            .iter()
            .map(|&c| HeteroNode { capacity: c, cross, scheduler: PathScheduler::Fifo })
            .collect();
        let path = HeteroPath::new(through, nodes);
        if let Some(b) = path.delay_bound(eps) {
            if best.is_none_or(|cur| b.delay < cur) {
                best = Some(b.delay);
            }
        }
    }
    let bound = best.expect("stable heterogeneous path");

    // Simulation with matching per-node capacities.
    let cfg = SimConfig {
        capacity: 0.0, // ignored by with_capacities
        hops: capacities.len(),
        n_through,
        n_cross,
        source,
        scheduler: SchedulerKind::Fifo,
        warmup: 5_000,
        packet_size: None,
    };
    let stats = TandemSim::with_capacities(cfg, &capacities, 77).run(400_000);
    assert!(stats.len() > 10_000);
    let emp = stats.violation_fraction(bound);
    assert!(
        emp <= eps * 3.0 + 30.0 / stats.len() as f64,
        "hetero: empirical P(W > {bound:.2}) = {emp:.2e} exceeds ε = {eps:.0e}"
    );
}

#[test]
fn hetero_reduces_to_homogeneous_in_simulation() {
    // Same total: uniform capacities vs HeteroPath with equal nodes must
    // give statistically indistinguishable distributions (same seeds).
    let source = Mmoo::paper_source();
    let cfg = SimConfig {
        capacity: 20.0,
        hops: 3,
        n_through: 40,
        n_cross: 60,
        source,
        scheduler: SchedulerKind::Fifo,
        warmup: 2_000,
        packet_size: None,
    };
    let mut a = TandemSim::new(cfg, 5).run(100_000);
    let mut b = TandemSim::with_capacities(cfg, &[20.0, 20.0, 20.0], 5).run(100_000);
    assert_eq!(a.len(), b.len());
    assert_eq!(a.quantile(0.99), b.quantile(0.99));
}
