//! End-to-end checks of `linksched run`: the shipped small scenarios
//! reproduce their golden stdout, the telemetry artifacts parse, and
//! the solver memo cache actually fires on a sweep.
//!
//! The full-size figure scenarios have their own `#[ignore]`d golden
//! tests in `crates/bench/tests/golden.rs` (release CI step); the CI
//! scenarios job additionally runs every shipped scenario file.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_linksched")).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "linksched {args:?} failed ({:?}): {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn run_scenario(name: &str, extra: &[&str]) -> String {
    let mut args = vec!["run".to_string(), repo_path(&format!("examples/scenarios/{name}"))];
    args.extend(extra.iter().map(|s| s.to_string()));
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    String::from_utf8(run(&refs).stdout).expect("stdout is UTF-8")
}

fn assert_matches_golden(scenario: &str, golden: &str) {
    let expected = std::fs::read_to_string(repo_path(golden)).expect("golden file");
    let actual = run_scenario(scenario, &[]);
    assert_eq!(expected, actual, "`linksched run {scenario}` diverged from {golden}");
}

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("linksched-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }

    fn read(&self, name: &str) -> String {
        std::fs::read_to_string(self.0.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn small_sweep_matches_golden() {
    assert_matches_golden("sweep_small.json", "tests/golden/small/sweep_small.txt");
}

#[test]
fn bound_demo_matches_golden() {
    assert_matches_golden("bound_demo.json", "tests/golden/small/bound_demo.txt");
}

#[test]
fn hetero_simulation_matches_golden() {
    assert_matches_golden("simulate_hetero.json", "tests/golden/small/simulate_hetero.txt");
}

#[test]
fn run_rejects_missing_and_malformed_scenarios() {
    let out = Command::new(env!("CARGO_BIN_EXE_linksched"))
        .args(["run", "/nonexistent/scenario.json"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let scratch = Scratch::new("badjson");
    let bad = scratch.path("bad.json");
    std::fs::write(&bad, "{\"name\": \"x\", \"experiment\": \"no-such\"}").unwrap();
    let out =
        Command::new(env!("CARGO_BIN_EXE_linksched")).args(["run", &bad]).output().expect("spawn");
    assert!(!out.status.success());
}

/// The sweep scenario has FIFO and EDF columns over the same grid; the
/// EDF fixed point re-solves the FIFO instances, so the memo cache must
/// report hits — surfaced through the metrics artifact.
#[cfg(feature = "telemetry")]
#[test]
fn sweep_scenario_artifacts_parse_and_cache_hits() {
    let scratch = Scratch::new("artifacts");
    let metrics = scratch.path("metrics.prom");
    let manifest = scratch.path("manifest.json");
    run_scenario("sweep_small.json", &["--metrics-out", &metrics, "--manifest-out", &manifest]);

    let manifest_text = scratch.read("manifest.json");
    nc_telemetry::json::validate(&manifest_text).expect("manifest is valid JSON");
    assert!(manifest_text.contains("\"binary\": \"sweep_small\""), "manifest names the scenario");

    let metrics_text = scratch.read("metrics.prom");
    let hits = prom_counter(&metrics_text, "core_solver_cache_hits_total")
        .expect("metrics export the solver-cache hit counter");
    assert!(hits > 0.0, "utilization sweep must hit the solver memo cache, got {hits}");
    let misses = prom_counter(&metrics_text, "core_solver_cache_misses_total").unwrap_or(0.0);
    assert!(misses > 0.0, "first-touch solves must be counted as misses");
}

#[cfg(feature = "telemetry")]
fn prom_counter(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| l.strip_prefix(name))
        .and_then(|rest| rest.trim().parse().ok())
}

/// `linksched simulate` fans replications across threads through the
/// same Monte Carlo engine as the bench binaries; stdout (and thus the
/// merged statistics) must be bitwise identical for any thread count.
#[test]
fn simulate_is_deterministic_across_thread_counts() {
    let base = [
        "simulate",
        "--hops",
        "2",
        "--through",
        "30",
        "--cross",
        "50",
        "--capacity",
        "15",
        "--slots",
        "8000",
        "--reps",
        "8",
        "--seed",
        "42",
    ];
    let reference = run(&with_threads(&base, "1")).stdout;
    for threads in ["2", "8"] {
        let out = run(&with_threads(&base, threads)).stdout;
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&out),
            "simulate output changed between --threads 1 and --threads {threads}"
        );
    }
}

fn with_threads<'a>(base: &[&'a str], threads: &'a str) -> Vec<&'a str> {
    let mut v = base.to_vec();
    v.push("--threads");
    v.push(threads);
    v
}

/// A fault-injected scenario run is bitwise deterministic: identical
/// stdout at 1, 2, and 8 worker threads (the per-node fault streams are
/// seeded per replication, independent of scheduling onto threads).
#[test]
fn faulted_scenario_is_deterministic_across_thread_counts() {
    let scenario = repo_path("examples/scenarios/faulted_tandem.json");
    let base = ["run", scenario.as_str(), "--reps", "4", "--slots", "15000"];
    let reference = run(&with_threads(&base, "1")).stdout;
    for threads in ["2", "8"] {
        let out = run(&with_threads(&base, threads)).stdout;
        assert_eq!(
            String::from_utf8_lossy(&reference),
            String::from_utf8_lossy(&out),
            "faulted run output changed between --threads 1 and --threads {threads}"
        );
    }
}

/// Crash-safety acceptance: SIGKILL a checkpointing fault-injected run
/// mid-flight, resume it, and require byte-identical stdout (and thus
/// merged statistics) versus an uninterrupted run at a different thread
/// count.
#[test]
fn killed_run_resumes_bitwise_identical() {
    let scratch = Scratch::new("resume");
    let scenario = scratch.path("faulted_sim.json");
    std::fs::write(
        &scenario,
        r#"{
          "name": "resume_probe",
          "experiment": "simulate",
          "params": {"hops": 2, "through": 30, "cross": 50, "capacity": 15.0, "sched": "fifo"},
          "faults": [
            {"kind": "gilbert_elliott", "p_fail": 0.002, "p_repair": 0.05, "capacity_factor": 0.0},
            {"kind": "drop", "prob": 0.001}
          ],
          "sim": {"reps": 12, "slots": 150000, "seed": 9}
        }"#,
    )
    .unwrap();

    // Reference: uninterrupted, single-threaded, no checkpointing.
    let reference = run(&["run", &scenario, "--threads", "1"]).stdout;

    // Victim: checkpoint after every replication, SIGKILL as soon as the
    // first checkpoint lands on disk.
    let ckpt = scratch.path("probe.ckpt");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_linksched"))
        .args([
            "run",
            &scenario,
            "--threads",
            "2",
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while !Path::new(&ckpt).exists() && std::time::Instant::now() < deadline {
        if child.try_wait().expect("try_wait").is_some() {
            break; // finished before we could kill it; resume still must work
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.kill().ok();
    child.wait().expect("reap victim");
    assert!(Path::new(&ckpt).exists(), "no checkpoint was written before the kill");

    // Resume: must pick up the finished replications and produce stdout
    // byte-identical to the uninterrupted reference.
    let out = Command::new(env!("CARGO_BIN_EXE_linksched"))
        .args([
            "run",
            &scenario,
            "--threads",
            "2",
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "1",
            "--resume",
        ])
        .output()
        .expect("spawn resume");
    assert!(
        out.status.success(),
        "resume run failed ({:?}): {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&reference),
        String::from_utf8_lossy(&out.stdout),
        "resumed stdout diverged from the uninterrupted run"
    );
}

/// A checkpoint from one workload must not be resumable by another: the
/// fingerprint mismatch surfaces as the checkpoint exit code (5), not a
/// silent merge of foreign statistics.
#[test]
fn resume_rejects_a_foreign_checkpoint() {
    let scratch = Scratch::new("foreign");
    let mk = |name: &str, seed: u64| {
        let p = scratch.path(name);
        std::fs::write(
            &p,
            format!(
                r#"{{
                  "name": "probe_{seed}",
                  "experiment": "simulate",
                  "params": {{"hops": 1, "through": 5, "cross": 5, "capacity": 10.0, "sched": "fifo"}},
                  "sim": {{"reps": 2, "slots": 2000, "seed": {seed}}}
                }}"#
            ),
        )
        .unwrap();
        p
    };
    let a = mk("a.json", 1);
    let b = mk("b.json", 2);
    let ckpt = scratch.path("a.ckpt");
    run(&["run", &a, "--checkpoint", &ckpt]);
    let out = Command::new(env!("CARGO_BIN_EXE_linksched"))
        .args(["run", &b, "--checkpoint", &ckpt, "--resume"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(5), "checkpoint mismatch must exit with code 5");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checkpoint"),
        "stderr should name the checkpoint problem: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The typed error taxonomy maps failure classes to distinct exit
/// codes: unreadable file (3), invalid scenario (4), infeasible
/// analysis (7).
#[test]
fn exit_codes_distinguish_failure_classes() {
    let probe = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_linksched")).args(args).output().expect("spawn")
    };
    let out = probe(&["run", "/nonexistent/scenario.json"]);
    assert_eq!(out.status.code(), Some(3), "unreadable file is exit code 3");

    let scratch = Scratch::new("exitcodes");
    let bad = scratch.path("bad.json");
    std::fs::write(&bad, "{\"name\": \"x\", \"experiment\": \"no-such\"}").unwrap();
    let out = probe(&["run", &bad]);
    assert_eq!(out.status.code(), Some(4), "invalid scenario is exit code 4");

    // An overloaded tandem has no finite delay bound: infeasible (7).
    let out = probe(&["bound", "--hops", "2", "--through", "900", "--cross", "0"]);
    assert_eq!(out.status.code(), Some(7), "infeasible analysis is exit code 7");
}

/// Scenario files shipped in the repository must all parse (full runs
/// of the figure-size ones are covered by the golden tests and CI).
#[test]
fn every_shipped_scenario_parses() {
    let dir = repo_path("examples/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(Path::new(&dir)).expect("examples/scenarios exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).expect("read scenario");
            nc_scenario::Scenario::from_json(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            seen += 1;
        }
    }
    assert!(seen >= 8, "expected the shipped scenario set, found {seen}");
}
