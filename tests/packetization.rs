//! Packetization end-to-end: the fluid bounds corrected by the
//! non-preemption penalty `H·L_max/C` must dominate the *packet-mode*
//! simulator (non-preemptive service, quantized emissions).

use linksched::core::{packetized_delay_bound, MmooTandem, PathScheduler};
use linksched::sim::{SchedulerKind, SimConfig, TandemSim};
use linksched::traffic::Mmoo;

const PACKET: f64 = 1.5; // kb — one MMOO emission = one packet

fn cfg(hops: usize, scheduler: SchedulerKind) -> SimConfig {
    SimConfig {
        capacity: 20.0,
        hops,
        n_through: 40,
        n_cross: 60,
        source: Mmoo::paper_source(),
        scheduler,
        warmup: 5_000,
        packet_size: Some(PACKET),
    }
}

#[test]
fn packetized_fifo_respects_corrected_bound() {
    let hops = 2usize;
    let eps = 1e-2;
    let analysis = MmooTandem {
        source: Mmoo::paper_source(),
        n_through: 40,
        n_cross: 60,
        capacity: 20.0,
        hops,
        scheduler: PathScheduler::Fifo,
    };
    let fluid = analysis.delay_bound(eps).expect("stable").bound.delay;
    let corrected = packetized_delay_bound(fluid, PACKET, 20.0, hops);
    let stats = TandemSim::new(cfg(hops, SchedulerKind::Fifo), 314).run(300_000);
    assert!(stats.len() > 10_000);
    let emp = stats.violation_fraction(corrected);
    assert!(
        emp <= eps * 3.0 + 30.0 / stats.len() as f64,
        "packetized FIFO: P(W > {corrected:.2}) = {emp:.2e} exceeds ε"
    );
}

#[test]
fn packetized_priority_respects_corrected_bound() {
    // Non-preemption hurts the high-priority flow the most in relative
    // terms (priority inversion): the penalty term is what covers it.
    let hops = 2usize;
    let eps = 1e-2;
    let analysis = MmooTandem {
        source: Mmoo::paper_source(),
        n_through: 40,
        n_cross: 60,
        capacity: 20.0,
        hops,
        scheduler: PathScheduler::ThroughPriority,
    };
    let fluid = analysis.delay_bound(eps).expect("stable").bound.delay;
    let corrected = packetized_delay_bound(fluid, PACKET, 20.0, hops);
    let stats = TandemSim::new(cfg(hops, SchedulerKind::ThroughPriority), 315).run(300_000);
    let emp = stats.violation_fraction(corrected);
    assert!(
        emp <= eps * 3.0 + 30.0 / stats.len() as f64,
        "packetized SP: P(W > {corrected:.2}) = {emp:.2e} exceeds ε"
    );
}

#[test]
fn packet_mode_close_to_fluid_mode_for_small_packets() {
    // The paper's justification for the fluid model: with packets small
    // relative to C, the two modes agree closely in distribution.
    let fluid_cfg = SimConfig { packet_size: None, ..cfg(2, SchedulerKind::Fifo) };
    let mut fluid = TandemSim::new(fluid_cfg, 99).run(200_000);
    let mut packet = TandemSim::new(cfg(2, SchedulerKind::Fifo), 99).run(200_000);
    let qf = fluid.quantile(0.99).unwrap();
    let qp = packet.quantile(0.99).unwrap();
    // Within the 2·L/C non-preemption slack plus a slot of quantization.
    assert!((qp - qf).abs() <= 2.0 * PACKET / 20.0 + 2.0, "fluid q99 {qf} vs packet q99 {qp}");
}

#[test]
fn conservation_in_packet_mode() {
    // Quantization must not lose data: emitted packets all eventually
    // leave (drain the network after stopping arrivals is not modelled,
    // so check outstanding ≤ in-flight backlog instead).
    let mut sim = TandemSim::new(cfg(3, SchedulerKind::Fifo), 7);
    for _ in 0..50_000 {
        sim.step();
    }
    assert!(sim.stats().len() > 1_000, "packets flow end to end");
}
