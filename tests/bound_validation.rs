//! End-to-end validation: the analytical delay bounds of `nc-core` must
//! dominate the empirical delay distribution produced by the `nc-sim`
//! tandem simulator.
//!
//! ε = 10⁻⁹ (the paper's setting) is unreachable by simulation, so the
//! bounds are recomputed at ε = 10⁻²…10⁻³ and compared against the
//! empirical violation fraction with a one-sided confidence margin.

use linksched::core::{MmooTandem, PathScheduler};
use linksched::sim::{SchedulerKind, SimConfig, TandemSim};
use linksched::traffic::Mmoo;

/// Scaled-down paper setup: C = 20 kb/ms so moderate flow counts load
/// the link, keeping simulation time manageable.
fn setup(hops: usize, n_through: usize, n_cross: usize) -> (MmooTandem, SimConfig) {
    let source = Mmoo::paper_source();
    let analysis = MmooTandem {
        source,
        n_through,
        n_cross,
        capacity: 20.0,
        hops,
        scheduler: PathScheduler::Fifo,
    };
    let sim = SimConfig {
        capacity: 20.0,
        hops,
        n_through,
        n_cross,
        source,
        scheduler: SchedulerKind::Fifo,
        warmup: 5_000,
        packet_size: None,
    };
    (analysis, sim)
}

/// Checks `P(W > bound) ≤ ε` empirically for a scheduler pair.
fn assert_bound_holds(
    analysis: MmooTandem,
    sim_cfg: SimConfig,
    eps: f64,
    slots: u64,
    seed: u64,
    label: &str,
) -> (f64, f64) {
    let bound = analysis
        .delay_bound(eps)
        .unwrap_or_else(|| panic!("{label}: no analytical bound"))
        .bound
        .delay;
    let stats = TandemSim::new(sim_cfg, seed).run(slots);
    assert!(stats.len() > 10_000, "{label}: too few samples ({})", stats.len());
    let emp = stats.violation_fraction(bound);
    // The bound must dominate the empirical violation frequency; allow
    // binomial noise via a generous multiple plus an absolute term.
    assert!(
        emp <= eps * 3.0 + 30.0 / stats.len() as f64,
        "{label}: empirical P(W > {bound:.2}) = {emp:.2e} exceeds ε = {eps:.0e}"
    );
    (bound, emp)
}

#[test]
fn fifo_bound_dominates_simulation() {
    for hops in [1usize, 3] {
        let (analysis, sim) = setup(hops, 40, 60);
        assert_bound_holds(analysis, sim, 1e-2, 300_000, 42, &format!("FIFO H={hops}"));
    }
}

#[test]
fn bmux_bound_dominates_simulation() {
    let (mut analysis, mut sim) = setup(2, 40, 60);
    analysis.scheduler = PathScheduler::Bmux;
    sim.scheduler = SchedulerKind::Bmux;
    assert_bound_holds(analysis, sim, 1e-2, 300_000, 43, "BMUX H=2");
}

#[test]
fn through_priority_bound_dominates_simulation() {
    let (mut analysis, mut sim) = setup(2, 40, 60);
    analysis.scheduler = PathScheduler::ThroughPriority;
    sim.scheduler = SchedulerKind::ThroughPriority;
    assert_bound_holds(analysis, sim, 1e-2, 300_000, 44, "SP-through H=2");
}

#[test]
fn edf_bound_dominates_simulation() {
    // Fixed per-node deadlines for through and cross traffic.
    let (d0, dc) = (10.0, 40.0);
    let (mut analysis, mut sim) = setup(2, 40, 60);
    analysis.scheduler = PathScheduler::Edf { d_through: d0, d_cross: dc };
    sim.scheduler = SchedulerKind::Edf { d_through: d0, d_cross: dc };
    assert_bound_holds(analysis, sim, 1e-2, 300_000, 45, "EDF H=2");
}

#[test]
fn bmux_bound_also_covers_gps() {
    // GPS is not a Δ-scheduler, but BMUX upper-bounds every
    // work-conserving locally-FIFO scheduler — including GPS.
    let (mut analysis, mut sim) = setup(2, 40, 60);
    analysis.scheduler = PathScheduler::Bmux;
    sim.scheduler = SchedulerKind::Gps { w_through: 1.0, w_cross: 1.0 };
    assert_bound_holds(analysis, sim, 1e-2, 300_000, 46, "GPS under BMUX bound H=2");
}

#[test]
fn bmux_bound_also_covers_scfq() {
    // Same for SCFQ, the packet approximation of GPS.
    let (mut analysis, mut sim) = setup(2, 40, 60);
    analysis.scheduler = PathScheduler::Bmux;
    sim.scheduler = SchedulerKind::Scfq { w_through: 1.0, w_cross: 1.0 };
    assert_bound_holds(analysis, sim, 1e-2, 300_000, 47, "SCFQ under BMUX bound H=2");
}

#[test]
fn scfq_tracks_gps_within_packet_granularity() {
    // The classical SCFQ result: per-class service lags GPS by at most
    // a few packet times; the simulated delay quantiles must be close.
    let (_, sim) = setup(2, 40, 60);
    let q = |k: SchedulerKind| {
        let mut stats = TandemSim::new(SimConfig { scheduler: k, ..sim }, 123).run(300_000);
        stats.quantile(0.999).unwrap()
    };
    let gps = q(SchedulerKind::Gps { w_through: 1.0, w_cross: 1.0 });
    let scfq = q(SchedulerKind::Scfq { w_through: 1.0, w_cross: 1.0 });
    assert!((scfq - gps).abs() <= 0.25 * gps + 3.0, "SCFQ q999 {scfq} far from GPS q999 {gps}");
}

#[test]
fn backlog_bound_dominates_simulation() {
    // Single node: the analytical backlog bound at ε must dominate the
    // empirical per-slot backlog distribution of the through class.
    use linksched::core::{single_node_backlog_bound, DeltaScheduler};
    let source = Mmoo::paper_source();
    let (capacity, n_through, n_cross) = (20.0, 40usize, 60usize);
    let eps = 1e-2;
    // Analysis at a swept moment parameter (best bound wins).
    let mut best: Option<f64> = None;
    for i in 1..=30 {
        let s = 0.005 * (1.3f64).powi(i);
        let gamma_max = capacity - (n_through + n_cross) as f64 * source.effective_bandwidth(s);
        if gamma_max <= 0.0 {
            continue;
        }
        for frac in [0.2, 0.5, 0.8] {
            let gamma = gamma_max * frac / 2.0;
            let envs = vec![
                source.ebb(s, n_through).sample_path_envelope(gamma),
                source.ebb(s, n_cross).sample_path_envelope(gamma),
            ];
            if let Some(b) =
                single_node_backlog_bound(capacity, &DeltaScheduler::fifo(2), &envs, 0, eps)
            {
                if best.is_none_or(|cur| b.backlog < cur) {
                    best = Some(b.backlog);
                }
            }
        }
    }
    let bound = best.expect("stable node");
    let (_, sim_cfg) = setup(1, n_through, n_cross);
    let mut sim = TandemSim::new(sim_cfg, 91);
    let _ = sim.run(300_000);
    let stats = sim.backlog_stats();
    assert!(stats.len() > 100_000);
    let emp = stats.violation_fraction(bound);
    assert!(
        emp <= eps * 3.0 + 30.0 / stats.len() as f64,
        "backlog: empirical P(B > {bound:.1}) = {emp:.2e} exceeds ε = {eps:.0e}"
    );
}

#[test]
fn analytical_ordering_matches_simulated_ordering() {
    // The analysis predicts EDF(short through deadline) < FIFO < BMUX;
    // the simulated 99.9% delay quantiles must follow the same order.
    let (analysis, sim) = setup(2, 40, 60);
    let eps = 1e-3;
    let slots = 400_000u64;

    let a_fifo = analysis.delay_bound(eps).unwrap().bound.delay;
    let a_bmux = MmooTandem { scheduler: PathScheduler::Bmux, ..analysis }
        .delay_bound(eps)
        .unwrap()
        .bound
        .delay;
    let a_edf =
        MmooTandem { scheduler: PathScheduler::Edf { d_through: 5.0, d_cross: 50.0 }, ..analysis }
            .delay_bound(eps)
            .unwrap()
            .bound
            .delay;
    assert!(a_edf <= a_fifo && a_fifo <= a_bmux);

    let q = |k: SchedulerKind, seed: u64| {
        let mut stats = TandemSim::new(SimConfig { scheduler: k, ..sim }, seed).run(slots);
        stats.quantile(0.999).unwrap()
    };
    let s_fifo = q(SchedulerKind::Fifo, 7);
    let s_bmux = q(SchedulerKind::Bmux, 7);
    let s_edf = q(SchedulerKind::Edf { d_through: 5.0, d_cross: 50.0 }, 7);
    assert!(s_edf <= s_fifo + 2.0, "simulated EDF {s_edf} vs FIFO {s_fifo}");
    assert!(s_fifo <= s_bmux + 2.0, "simulated FIFO {s_fifo} vs BMUX {s_bmux}");
    // And every simulated quantile sits below its analytical bound.
    assert!(s_fifo <= a_fifo, "simulated {s_fifo} above bound {a_fifo}");
    assert!(s_bmux <= a_bmux, "simulated {s_bmux} above bound {a_bmux}");
    assert!(s_edf <= a_edf, "simulated {s_edf} above bound {a_edf}");
}
