//! Property-based tests for `DelayStats::merge`: merging any split of
//! a sample stream must equal collecting it in a single pass.
//!
//! Exact mode: everything (count, mean, max, quantiles, violation
//! fractions) agrees up to floating-point tolerance. Streaming mode:
//! moments, max, and registered-threshold violation counts are exact
//! by construction; quantiles agree whenever the reservoir is large
//! enough to retain every sample.

use linksched::sim::DelayStats;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Collects `data` in one pass.
fn single_pass(data: &[f64], make: impl Fn() -> DelayStats) -> DelayStats {
    let mut s = make();
    for &d in data {
        s.record(d);
    }
    s
}

/// Collects `data` split at `cuts` (interpreted modulo the length) and
/// merges the pieces in order.
fn split_merge(data: &[f64], cuts: &[usize], make: impl Fn() -> DelayStats) -> DelayStats {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (data.len() + 1)).collect();
    points.sort_unstable();
    points.dedup();
    let mut merged = make();
    let mut start = 0;
    for &p in points.iter().chain(std::iter::once(&data.len())) {
        let mut part = make();
        for &d in &data[start..p.max(start)] {
            part.record(d);
        }
        merged.merge(&part);
        start = p.max(start);
    }
    merged
}

fn assert_equivalent(
    mut a: DelayStats,
    mut b: DelayStats,
    quantiles_exact: bool,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    prop_assert_eq!(a.max(), b.max());
    let (am, bm) = (a.mean().unwrap(), b.mean().unwrap());
    prop_assert!((am - bm).abs() <= 1e-9 * (1.0 + am.abs()), "mean {} vs {}", am, bm);
    if let (Some(av), Some(bv)) = (a.variance(), b.variance()) {
        prop_assert!((av - bv).abs() <= 1e-6 * (1.0 + av.abs()), "variance {} vs {}", av, bv);
    }
    if quantiles_exact {
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), b.quantile(q), "quantile {}", q);
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn exact_two_way_split_equals_single_pass(
        data in vec(0.0f64..1000.0, 1..200),
        cut in 0usize..200,
    ) {
        let single = single_pass(&data, DelayStats::new);
        let merged = split_merge(&data, &[cut], DelayStats::new);
        assert_equivalent(merged.clone(), single.clone(), true)?;
        for d in [0.0, 100.0, 500.0, 999.0] {
            prop_assert_eq!(merged.violation_fraction(d), single.violation_fraction(d));
        }
    }

    #[test]
    fn exact_multi_way_split_equals_single_pass(
        data in vec(0.0f64..1000.0, 1..200),
        cuts in vec(0usize..200, 0..5),
    ) {
        let single = single_pass(&data, DelayStats::new);
        let merged = split_merge(&data, &cuts, DelayStats::new);
        assert_equivalent(merged, single, true)?;
    }

    #[test]
    fn streaming_split_equals_single_pass(
        data in vec(0.0f64..1000.0, 1..200),
        cut in 0usize..200,
    ) {
        // Reservoir larger than any generated stream: quantiles exact.
        let make = || DelayStats::streaming_with_thresholds(256, &[250.0, 750.0]);
        let single = single_pass(&data, make);
        let merged = split_merge(&data, &[cut], make);
        // Retained samples may be reordered by the merge; compare sorted.
        prop_assert_eq!(merged.samples().len(), single.samples().len());
        assert_equivalent(merged.clone(), single.clone(), true)?;
        for d in [250.0, 750.0] {
            prop_assert_eq!(merged.violation_fraction(d), single.violation_fraction(d));
        }
    }

    #[test]
    fn streaming_subsampled_moments_stay_exact(
        data in vec(0.0f64..1000.0, 40..200),
        cut in 0usize..200,
    ) {
        // Reservoir smaller than the stream: quantiles are estimates,
        // but moments, max, and thresholds must stay exact.
        let make = || DelayStats::streaming_with_thresholds(16, &[500.0]);
        let single = single_pass(&data, make);
        let merged = split_merge(&data, &[cut], make);
        assert_equivalent(merged.clone(), single.clone(), false)?;
        prop_assert_eq!(merged.violation_fraction(500.0), single.violation_fraction(500.0));
        prop_assert_eq!(merged.samples().len(), 16);
    }

    #[test]
    fn merging_empty_is_identity(data in vec(0.0f64..1000.0, 1..100)) {
        let mut s = single_pass(&data, DelayStats::new);
        let before_samples = s.samples().to_vec();
        let before = (s.len(), s.mean(), s.variance(), s.max());
        s.merge(&DelayStats::new());
        prop_assert_eq!((s.len(), s.mean(), s.variance(), s.max()), before);
        prop_assert_eq!(s.samples(), &before_samples[..]);

        let mut stream = single_pass(&data, || DelayStats::streaming(64));
        let before = (stream.len(), stream.mean(), stream.max(), stream.samples().to_vec());
        stream.merge(&DelayStats::streaming(64));
        prop_assert_eq!(
            (stream.len(), stream.mean(), stream.max(), stream.samples().to_vec()),
            before
        );
    }
}
