//! Tier-1 checks of the parallel Monte Carlo validation engine:
//!
//! * the merged statistics of a run are bitwise-identical for 1, 2,
//!   and 8 worker threads (seeds derive from the master seed, merges
//!   happen in replication order);
//! * a fast multi-replication smoke validation: simulated FIFO and
//!   static-priority delay quantiles respect the analytical bounds at
//!   a loose ε.
//!
//! The heavyweight single-seed validation lives in
//! `bound_validation.rs`; this file exercises the engine path.

use linksched::core::{MmooTandem, PathScheduler};
use linksched::sim::{MonteCarlo, SchedulerKind, SimConfig};
use linksched::traffic::Mmoo;

/// Scaled-down paper setup (C = 20 kb/ms), as in `bound_validation.rs`.
fn setup(scheduler: PathScheduler, kind: SchedulerKind) -> (MmooTandem, SimConfig) {
    let source = Mmoo::paper_source();
    let analysis =
        MmooTandem { source, n_through: 40, n_cross: 60, capacity: 20.0, hops: 2, scheduler };
    let sim = SimConfig {
        capacity: 20.0,
        hops: 2,
        n_through: 40,
        n_cross: 60,
        source,
        scheduler: kind,
        warmup: 5_000,
        packet_size: None,
    };
    (analysis, sim)
}

/// Everything observable about a merged run, down to the bit level.
type Fingerprint = (usize, Option<u64>, Option<u64>, Option<u64>, Option<u64>, u64, Vec<u64>);

fn fingerprint(threads: usize) -> Fingerprint {
    let (_, cfg) = setup(PathScheduler::Fifo, SchedulerKind::Fifo);
    let mc = MonteCarlo::new(8, 10_000, 0xD5_EED).threads(threads).streaming(&[25.0]);
    let mut r = mc.run(cfg);
    (
        r.merged.len(),
        r.merged.mean().map(f64::to_bits),
        r.merged.variance().map(f64::to_bits),
        r.merged.max().map(f64::to_bits),
        r.merged.quantile(0.999).map(f64::to_bits),
        r.merged.violation_fraction(25.0).to_bits(),
        r.merged.samples().iter().map(|s| s.to_bits()).collect(),
    )
}

#[test]
fn merged_stats_bitwise_identical_across_thread_counts() {
    let one = fingerprint(1);
    assert!(one.0 > 10_000, "too few samples for a meaningful check");
    assert_eq!(one, fingerprint(2), "1 vs 2 worker threads");
    assert_eq!(one, fingerprint(8), "1 vs 8 worker threads");
}

/// Multi-replication bound check at a loose ε — the engine-path
/// analogue of `bound_validation.rs`, fast enough for every run.
fn assert_bound_holds_parallel(scheduler: PathScheduler, kind: SchedulerKind, label: &str) {
    let eps = 1e-2;
    let (analysis, cfg) = setup(scheduler, kind);
    let bound = analysis
        .delay_bound(eps)
        .unwrap_or_else(|| panic!("{label}: no analytical bound"))
        .bound
        .delay;
    let mc = MonteCarlo::new(4, 50_000, 0xA11_0C8).streaming(&[bound]);
    let mut report = mc.run(cfg);
    let n = report.merged.len();
    assert!(n > 50_000, "{label}: too few samples ({n})");
    let q = report.merged.quantile(1.0 - eps).unwrap();
    assert!(q <= bound, "{label}: sim q(1-{eps}) = {q:.2} exceeds bound {bound:.2}");
    let emp = report.merged.violation_fraction(bound);
    assert!(
        emp <= eps * 3.0 + 30.0 / n as f64,
        "{label}: empirical P(W > {bound:.2}) = {emp:.2e} exceeds ε = {eps:.0e}"
    );
    // Every replication's own quantile should respect the bound too.
    let (_, hi) = report.quantile_spread(1.0 - eps).unwrap();
    assert!(hi <= bound, "{label}: worst replication q = {hi:.2} exceeds bound {bound:.2}");
}

#[test]
fn fifo_bound_dominates_parallel_smoke() {
    assert_bound_holds_parallel(PathScheduler::Fifo, SchedulerKind::Fifo, "FIFO H=2");
}

#[test]
fn static_priority_bound_dominates_parallel_smoke() {
    assert_bound_holds_parallel(
        PathScheduler::ThroughPriority,
        SchedulerKind::ThroughPriority,
        "SP-through H=2",
    );
}
