//! Differential checks of the parallel analytic sweep engine: for
//! every sweep experiment, `linksched run … --threads N` must produce
//! stdout byte-identical to the serial run at N = 1, 2, and 8.
//!
//! The engine guarantees this by construction (cells are pure
//! functions of their index, results are stored by index and printed
//! serially in order, and the shared solver cache only ever returns
//! bit-exact values) — these tests pin the guarantee at the binary
//! boundary, where a regression would silently corrupt figure output.
//!
//! Small purpose-built grids keep the fast tests fast; the shipped
//! full-size Fig. 3 scenario has an `#[ignore]`d variant for the
//! release CI step.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[String]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_linksched")).args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "linksched {args:?} failed ({:?}): {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout_at_threads(scenario_path: &str, threads: usize) -> String {
    let args = vec![
        "run".to_string(),
        scenario_path.to_string(),
        "--threads".to_string(),
        threads.to_string(),
    ];
    String::from_utf8(run(&args).stdout).expect("stdout is UTF-8")
}

/// Asserts the serial (1-thread) stdout is byte-identical at 2 and 8
/// worker threads, and non-trivial.
fn assert_thread_invariant(scenario_path: &str, label: &str) {
    let serial = stdout_at_threads(scenario_path, 1);
    assert!(serial.lines().count() > 3, "{label}: suspiciously short output:\n{serial}");
    for threads in [2, 8] {
        let parallel = stdout_at_threads(scenario_path, threads);
        assert_eq!(serial, parallel, "{label}: stdout diverged between 1 and {threads} threads");
    }
}

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("linksched-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn write(&self, name: &str, content: &str) -> String {
        let p = self.0.join(name);
        std::fs::write(&p, content).expect("write scenario");
        p.to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn utilization_sweep_is_thread_invariant() {
    // The shipped CI scenario exercises the real utilization_sweep
    // path including the shared-cache FIFO/EDF columns.
    assert_thread_invariant(
        &repo_path("examples/scenarios/sweep_small.json"),
        "sweep_small (utilization_sweep)",
    );
}

#[test]
fn mix_sweep_is_thread_invariant() {
    let scratch = Scratch::new("mix-par");
    let path = scratch.write(
        "mix_small.json",
        r#"{
  "name": "mix_small",
  "experiment": "mix_sweep",
  "params": {
    "hops": [2],
    "u_total": 0.30,
    "mix_start": 25,
    "mix_stop": 75,
    "mix_step": 50,
    "edf_ratio_short": 2.0,
    "edf_ratio_long": 0.5,
    "epsilon": 1e-6
  },
  "sim": {"reps": 1, "slots": 2000}
}"#,
    );
    assert_thread_invariant(&path, "mix_small (mix_sweep)");
}

#[test]
fn path_sweep_is_thread_invariant() {
    let scratch = Scratch::new("path-par");
    let path = scratch.write(
        "path_small.json",
        r#"{
  "name": "path_small",
  "experiment": "path_sweep",
  "params": {
    "hops": [1, 2],
    "utilizations": [0.30],
    "edf_cross_ratio": 10.0,
    "epsilon": 1e-6
  },
  "sim": {"reps": 1, "slots": 2000}
}"#,
    );
    assert_thread_invariant(&path, "path_small (path_sweep)");
}

#[test]
fn cross_sweep_is_thread_invariant() {
    // `linksched sweep` goes through the same engine; its CrossSweep
    // experiment parallelizes over the cross-flow axis.
    let base = ["sweep", "--hops", "2", "--through", "20", "--cross-max", "100"];
    let at = |threads: usize| {
        let mut args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        args.push("--threads".to_string());
        args.push(threads.to_string());
        String::from_utf8(run(&args).stdout).expect("stdout is UTF-8")
    };
    let serial = at(1);
    assert!(serial.lines().count() > 3, "cross sweep output too short:\n{serial}");
    for threads in [2, 8] {
        assert_eq!(serial, at(threads), "cross sweep diverged at {threads} threads");
    }
}

/// Full-size Fig. 3 at 1 vs 8 threads — the release-CI variant of the
/// fast grids above (minutes of analysis).
#[test]
#[ignore = "full-size figure scenario; run in the release CI step"]
fn fig3_full_is_thread_invariant() {
    assert_thread_invariant(&repo_path("examples/scenarios/fig3.json"), "fig3 (mix_sweep)");
}
