//! Theorem 2 end-to-end: the deterministic schedulability condition
//! (Eq. (24)) is *sufficient* — greedy traffic never violates a feasible
//! bound in the simulator — and *necessary* for concave envelopes — the
//! adversarial construction, replayed through the real scheduler,
//! produces an actual violation of any infeasible bound.
//!
//! Class ordering: the simulator breaks same-slot ties by class index
//! (lower first). The analysis's delay bound must hold under *any* tie
//! resolution, and the adversarial construction is entitled to the
//! worst one — so in both replays the tagged flow is mapped to the
//! *last* class, making same-instant cross bursts precede it, exactly
//! as in the proof of Theorem 2 (the tagged arrival at `t*` queues
//! behind everything that arrived "by" `t*`).

use linksched::core::{adversarial_scenario, delay_feasible, min_feasible_delay, DeltaScheduler};
use linksched::sim::{replay_single_node, NodePolicy};
use linksched::traffic::DetEnvelope;

const C: f64 = 10.0;

/// Envelopes in analysis order: index 0 is the tagged flow.
fn leaky_envs() -> Vec<DetEnvelope> {
    vec![
        DetEnvelope::leaky_bucket(2.0, 4.0), // flow 0 (tagged)
        DetEnvelope::leaky_bucket(3.0, 6.0), // flow 1
        DetEnvelope::leaky_bucket(1.0, 8.0), // flow 2
    ]
}

/// EDF deadlines in analysis order (tagged flow tightest).
const EDF_DEADLINES: [f64; 3] = [4.0, 12.0, 20.0];

/// Analysis scheduler / simulator policy pairs describing the *same*
/// link discipline, with the simulator classes permuted to
/// `[flow1, flow2, tagged]` (tagged last — worst tie-break).
fn schedulers() -> Vec<(&'static str, DeltaScheduler, NodePolicy)> {
    vec![
        ("fifo", DeltaScheduler::fifo(3), NodePolicy::Fifo),
        (
            "sp",
            DeltaScheduler::bmux(3, 0),
            // Simulator order [flow1, flow2, tagged]: tagged lowest priority.
            NodePolicy::StaticPriority(vec![0, 0, 1]),
        ),
        (
            "edf",
            DeltaScheduler::edf(&EDF_DEADLINES),
            NodePolicy::Edf(vec![EDF_DEADLINES[1], EDF_DEADLINES[2], EDF_DEADLINES[0]]),
        ),
    ]
}

/// Slots cumulative arrival curves into per-slot amounts, permuted so
/// the tagged flow (analysis index 0) is the simulator's last class.
fn permute_tagged_last(mut traces: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let tagged = traces.remove(0);
    traces.push(tagged);
    traces
}

/// Slot the greedy (envelope-exact) arrivals of every flow.
fn greedy_traces(envs: &[DetEnvelope], horizon: usize) -> Vec<Vec<f64>> {
    envs.iter()
        .map(|e| {
            (0..horizon)
                .map(|i| e.curve().eval((i + 1) as f64) - e.curve().eval(i as f64))
                .collect()
        })
        .collect()
}

#[test]
fn sufficiency_greedy_traffic_respects_feasible_bound() {
    for (kind, sched, policy) in schedulers() {
        let envs = leaky_envs();
        let d = min_feasible_delay(C, &sched, &envs, 0)
            .unwrap_or_else(|| panic!("{kind}: no feasible delay"));
        assert!(delay_feasible(C, &sched, &envs, 0, d));
        // Replay greedy arrivals with the worst tie-break for the tagged
        // flow; its delay must stay within d plus discretization slack
        // (slotting front-loads each slot's envelope growth).
        let traces = permute_tagged_last(greedy_traces(&envs, 400));
        let stats = &replay_single_node(C, policy.clone(), &traces)[2];
        let worst = stats.max().unwrap();
        assert!(worst <= d.ceil() + 1.0, "{kind}: greedy delay {worst} exceeds feasible bound {d}");
    }
}

#[test]
fn necessity_adversarial_scenario_violates_infeasible_bound() {
    // Sub-slot resolution: the EDF tight bound here is a fraction of a
    // slot, so the replay runs on a refined grid of step `dt` (capacity
    // and deadlines rescaled accordingly; measured delays scaled back).
    let dt = 0.125;
    for (kind, sched, policy) in schedulers() {
        let envs = leaky_envs();
        let d_tight = min_feasible_delay(C, &sched, &envs, 0).unwrap();
        // Claim a bound 40% below the tight one: Theorem 2 says some
        // arrival pattern violates it. Build and replay it.
        let d_claim = 0.6 * d_tight;
        let scenario = adversarial_scenario(C, &sched, &envs, 0, d_claim)
            .unwrap_or_else(|| panic!("{kind}: expected an adversarial scenario"));
        assert!(scenario.excess > 0.0);
        let horizon = scenario.t_star + d_tight + 50.0;
        let traces = permute_tagged_last(scenario.slotted_arrivals(dt, horizon));
        let fine_policy = match &policy {
            NodePolicy::Edf(ds) => NodePolicy::Edf(ds.iter().map(|d| d / dt).collect()),
            other => other.clone(),
        };
        let stats = &replay_single_node(C * dt, fine_policy, &traces)[2];
        let worst = stats.max().unwrap() * dt;
        assert!(
            worst > d_claim,
            "{kind}: adversarial replay delay {worst} did not violate claimed bound {d_claim} \
             (tight bound {d_tight})"
        );
    }
}

#[test]
fn feasible_bound_not_violated_even_by_adversarial_ordering() {
    // Claiming a bound *above* the tight one must survive the same
    // greedy replay that breaks infeasible claims.
    for (kind, sched, policy) in schedulers() {
        let envs = leaky_envs();
        let d_tight = min_feasible_delay(C, &sched, &envs, 0).unwrap();
        let d_claim = 1.2 * d_tight + 2.0; // +2 slots of discretization slack
        let traces = permute_tagged_last(greedy_traces(&envs, 400));
        let stats = &replay_single_node(C, policy.clone(), &traces)[2];
        assert!(
            stats.max().unwrap() <= d_claim,
            "{kind}: feasible bound violated by greedy replay"
        );
    }
}

#[test]
fn tight_bound_is_actually_attained_by_greedy_traffic() {
    // For FIFO with leaky buckets the tight bound ΣB/C is approached by
    // the greedy scenario (up to slot discretization).
    let sched = DeltaScheduler::fifo(3);
    let envs = leaky_envs();
    let d_tight = min_feasible_delay(C, &sched, &envs, 0).unwrap();
    let traces = permute_tagged_last(greedy_traces(&envs, 400));
    let stats = &replay_single_node(C, NodePolicy::Fifo, &traces)[2];
    let worst = stats.max().unwrap();
    assert!(
        worst >= d_tight - 2.0,
        "greedy delay {worst} far below the tight bound {d_tight} — bound not tight?"
    );
}
