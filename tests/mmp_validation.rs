//! Multi-state Markov (MMP) workloads end-to-end: the source-generic
//! analysis must dominate a hand-rolled multi-hop simulation of the
//! same 3-state sources (the tandem simulator's built-in sources are
//! MMOO; this drives `Node`s directly, mirroring Fig. 1).

use linksched::core::{PathScheduler, SourceTandem};
use linksched::sim::{Chunk, DelayStats, MmpAggregate, Node, NodePolicy, Source};
use linksched::traffic::Mmp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

fn video() -> Mmp {
    Mmp::new(
        vec![vec![0.95, 0.05, 0.00], vec![0.02, 0.95, 0.03], vec![0.00, 0.30, 0.70]],
        vec![0.0, 0.1, 0.5],
    )
}

/// Simulates `hops` FIFO nodes in tandem with fresh MMP cross traffic
/// per node and returns the through aggregate's virtual delays.
fn simulate_tandem_mmp(
    src: &Mmp,
    n_through: usize,
    n_cross: usize,
    capacity: f64,
    hops: usize,
    slots: u64,
    seed: u64,
) -> DelayStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut through = MmpAggregate::stationary(src, n_through, &mut rng);
    let mut cross: Vec<MmpAggregate> =
        (0..hops).map(|_| MmpAggregate::stationary(src, n_cross, &mut rng)).collect();
    let mut nodes: Vec<Node> =
        (0..hops).map(|_| Node::new(capacity, NodePolicy::Fifo, 2)).collect();
    let mut outstanding: VecDeque<(u64, f64)> = VecDeque::new();
    let mut stats = DelayStats::new();
    let warmup = 5_000u64;
    for t in 0..slots {
        let a0 = through.pull(&mut rng);
        let mut forwarded = Vec::new();
        if a0 > 0.0 {
            forwarded.push(Chunk { class: 0, bits: a0, entry: t, node_arrival: t });
            outstanding.push_back((t, a0));
        }
        for (h, node) in nodes.iter_mut().enumerate() {
            for c in forwarded.drain(..) {
                node.enqueue(c);
            }
            let ac = cross[h].pull(&mut rng);
            if ac > 0.0 {
                node.enqueue(Chunk { class: 1, bits: ac, entry: t, node_arrival: t });
            }
            let last = h + 1 == hops;
            for mut c in node.serve_slot_vec(t) {
                if c.class != 0 {
                    continue;
                }
                if last {
                    let front = outstanding.front_mut().expect("outstanding");
                    front.1 -= c.bits;
                    if front.1 <= 1e-9 {
                        let (entry, _) = outstanding.pop_front().expect("front");
                        if entry >= warmup {
                            stats.record((t - entry) as f64);
                        }
                    }
                } else {
                    c.node_arrival = t;
                    forwarded.push(c);
                }
            }
        }
    }
    stats
}

#[test]
fn mmp_multi_hop_bound_dominates_simulation() {
    let src = video();
    let (n_through, n_cross, capacity, hops) = (40usize, 60usize, 20.0, 3usize);
    let eps = 1e-2;
    let tandem = SourceTandem {
        through_source: &src,
        n_through,
        cross_source: &src,
        n_cross,
        capacity,
        hops,
        scheduler: PathScheduler::Fifo,
    };
    assert!(tandem.utilization() < 1.0, "test setup must be stable");
    let bound = tandem.delay_bound(eps).expect("stable").bound.delay;
    let stats = simulate_tandem_mmp(&src, n_through, n_cross, capacity, hops, 300_000, 0xC0DE);
    assert!(stats.len() > 10_000);
    let emp = stats.violation_fraction(bound);
    assert!(
        emp <= eps * 3.0 + 30.0 / stats.len() as f64,
        "MMP multi-hop: empirical P(W > {bound:.2}) = {emp:.2e} exceeds ε = {eps:.0e}"
    );
}

#[test]
fn mmp_empirical_mean_matches_model() {
    let src = video();
    let mut rng = StdRng::seed_from_u64(9);
    let mut agg = MmpAggregate::stationary(&src, 30, &mut rng);
    let slots = 100_000usize;
    let total: f64 = (0..slots).map(|_| agg.pull(&mut rng)).sum();
    let per_flow = total / (slots as f64 * 30.0);
    let want = src.mean_rate();
    assert!((per_flow - want).abs() / want < 0.05, "empirical {per_flow} vs analytical {want}");
}
